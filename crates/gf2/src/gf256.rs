//! GF(2^8) with the AES-adjacent reduction polynomial `x^8 + x^4 + x^3 + x^2 + 1`
//! (0x11d), the conventional choice for Reed–Solomon over bytes.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Sub};
use std::sync::OnceLock;

/// Reduction polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
const POLY: u16 = 0x11d;
/// Multiplicative generator of GF(2^8)* for this polynomial.
const GENERATOR: u8 = 0x02;

struct Tables {
    /// `exp[i] = g^i` for i in 0..510 (doubled to skip a mod in mul).
    exp: [u8; 510],
    /// `log[x] = i` such that `g^i = x`; `log[0]` is unused.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 510];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..510 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2^8).
///
/// Addition is XOR; multiplication uses log/exp tables with the 0x11d
/// reduction polynomial. All operations are total except [`Gf256::inv`] and
/// division, which panic on zero (documented below).
///
/// # Examples
///
/// ```
/// use gf2::Gf256;
/// let a = Gf256::new(0x57);
/// let b = Gf256::new(0x83);
/// assert_eq!((a * b) / b, a);
/// assert_eq!(a + a, Gf256::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);

    /// Wraps a byte as a field element.
    pub fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// Returns the multiplicative generator `g = 0x02`.
    pub fn generator() -> Self {
        Gf256(GENERATOR)
    }

    /// Returns `g^i` where `g` is the generator.
    pub fn alpha(i: usize) -> Self {
        Gf256(tables().exp[i % 255])
    }

    /// True if this is the zero element.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^8)");
        let t = tables();
        Gf256(t.exp[255 - t.log[self.0 as usize] as usize])
    }

    /// Raises `self` to the `e`-th power (with `0^0 = 1`).
    pub fn pow(self, e: usize) -> Self {
        if self.0 == 0 {
            return if e == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Gf256(t.exp[(l * e) % 255])
    }

    /// Discrete log base `g`; `None` for zero.
    pub fn log(self) -> Option<u16> {
        if self.0 == 0 {
            None
        } else {
            Some(tables().log[self.0 as usize])
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf256 {
    type Output = Gf256;
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf256 {
    type Output = Gf256;
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Characteristic 2: subtraction is addition.
        self + rhs
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[l])
    }
}

impl MulAssign for Gf256 {
    fn mul_assign(&mut self, rhs: Gf256) {
        *self = *self * rhs;
    }
}

#[allow(clippy::suspicious_arithmetic_impl)]
impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Gf256) -> Gf256 {
        self * rhs.inv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(Gf256(a) + Gf256(a), Gf256::ZERO);
            assert_eq!(Gf256(a) + Gf256::ZERO, Gf256(a));
        }
    }

    #[test]
    fn one_is_multiplicative_identity() {
        for a in 0..=255u8 {
            assert_eq!(Gf256(a) * Gf256::ONE, Gf256(a));
        }
    }

    #[test]
    fn zero_annihilates() {
        for a in 0..=255u8 {
            assert_eq!(Gf256(a) * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn inverses_exhaustive() {
        for a in 1..=255u8 {
            assert_eq!(Gf256(a) * Gf256(a).inv(), Gf256::ONE, "a={a}");
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = std::collections::HashSet::new();
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(seen.insert(x.0), "generator order < 255");
            x *= Gf256::generator();
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Gf256(0x53);
        let mut acc = Gf256::ONE;
        for e in 0..520 {
            assert_eq!(a.pow(e), acc, "e={e}");
            acc *= a;
        }
    }

    #[test]
    fn pow_of_zero() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn alpha_cycles() {
        assert_eq!(Gf256::alpha(0), Gf256::ONE);
        assert_eq!(Gf256::alpha(255), Gf256::ONE);
        assert_eq!(Gf256::alpha(1), Gf256::generator());
    }

    proptest! {
        #[test]
        fn mul_commutative(a: u8, b: u8) {
            prop_assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
        }

        #[test]
        fn mul_associative(a: u8, b: u8, c: u8) {
            prop_assert_eq!((Gf256(a) * Gf256(b)) * Gf256(c), Gf256(a) * (Gf256(b) * Gf256(c)));
        }

        #[test]
        fn distributive(a: u8, b: u8, c: u8) {
            prop_assert_eq!(Gf256(a) * (Gf256(b) + Gf256(c)),
                            Gf256(a) * Gf256(b) + Gf256(a) * Gf256(c));
        }

        #[test]
        fn division_roundtrip(a: u8, b in 1u8..) {
            prop_assert_eq!((Gf256(a) * Gf256(b)) / Gf256(b), Gf256(a));
        }

        #[test]
        fn log_exp_roundtrip(a in 1u8..) {
            let l = Gf256(a).log().unwrap() as usize;
            prop_assert_eq!(Gf256::alpha(l), Gf256(a));
        }

        #[test]
        fn inv_is_involution(a in 1u8..) {
            prop_assert_eq!(Gf256(a).inv().inv(), Gf256(a));
            prop_assert_eq!(Gf256(a) * Gf256(a).inv(), Gf256::ONE);
        }

        #[test]
        fn frobenius_squaring_is_additive(a: u8, b: u8) {
            // Characteristic 2: x ↦ x² is a field homomorphism.
            let (a, b) = (Gf256(a), Gf256(b));
            prop_assert_eq!((a + b) * (a + b), a * a + b * b);
        }

        #[test]
        fn pow_splits_over_exponent_sum(a: u8, i in 0usize..300, j in 0usize..300) {
            let a = Gf256(a);
            prop_assert_eq!(a.pow(i + j), a.pow(i) * a.pow(j));
        }
    }
}
