//! Bit-level wrapper around the Reed–Solomon codec.
//!
//! The randomness exchange sends a *bit* per round per link, so the seed —
//! a bit string — must be carried by a binary code (Theorem 2.1). We realize
//! it by packing bits into GF(2^8) symbols and striping long messages across
//! independent RS blocks. A bit flip corrupts at most one symbol; a deleted
//! bit (a known position) makes its covering symbol an erasure. The code has
//! constant rate `k/n` and corrects a constant fraction of bit corruptions
//! per block, which is exactly what Algorithm 5 requires.

use crate::rs::{DecodeError, ReedSolomon};

/// A constant-rate binary code built from striped RS(n, k) blocks.
///
/// # Examples
///
/// ```
/// use rscode::BinaryCode;
/// let code = BinaryCode::rate_one_third();
/// let bits: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
/// let mut word = code.encode(&bits);
/// word.bits[4] ^= true;                 // substitution
/// word.erasures.push(10);               // deletion → erasure
/// let back = code.decode(&word).unwrap();
/// assert_eq!(&back[..200], &bits[..]);
/// ```
#[derive(Clone, Debug)]
pub struct BinaryCode {
    rs: ReedSolomon,
}

/// A transmitted binary codeword: the bit payload plus the positions the
/// receiver knows were deleted (erasures).
#[derive(Clone, Debug, Default)]
pub struct BinaryWord {
    /// Codeword bits (message blocks followed by parity, per stripe).
    pub bits: Vec<bool>,
    /// Bit positions known to be corrupted (e.g. deletions).
    pub erasures: Vec<usize>,
}

impl BinaryCode {
    /// Builds a binary code from RS(n, k) blocks.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid for [`ReedSolomon::new`].
    pub fn new(n: usize, k: usize) -> Self {
        BinaryCode {
            rs: ReedSolomon::new(n, k).expect("valid RS parameters"),
        }
    }

    /// The rate-1/3 instantiation used by the randomness exchange
    /// (the paper suggests ρ = 1/3 after Theorem 2.1): RS(30, 10).
    pub fn rate_one_third() -> Self {
        BinaryCode::new(30, 10)
    }

    /// Message bits carried per RS block.
    pub fn block_message_bits(&self) -> usize {
        self.rs.message_len() * 8
    }

    /// Codeword bits produced per RS block.
    pub fn block_code_bits(&self) -> usize {
        self.rs.block_len() * 8
    }

    /// Number of codeword bits produced for a `message_bits`-bit message.
    pub fn encoded_len(&self, message_bits: usize) -> usize {
        let blocks = message_bits.div_ceil(self.block_message_bits()).max(1);
        blocks * self.block_code_bits()
    }

    /// Encodes a bit string (zero-padded up to a whole number of blocks).
    pub fn encode(&self, bits: &[bool]) -> BinaryWord {
        let k_bits = self.block_message_bits();
        let blocks = bits.len().div_ceil(k_bits).max(1);
        let mut out = Vec::with_capacity(blocks * self.block_code_bits());
        for b in 0..blocks {
            let mut msg = vec![0u8; self.rs.message_len()];
            for i in 0..k_bits {
                let idx = b * k_bits + i;
                if idx < bits.len() && bits[idx] {
                    msg[i / 8] |= 1 << (i % 8);
                }
            }
            let cw = self.rs.encode(&msg).expect("length is k by construction");
            for byte in cw {
                for bit in 0..8 {
                    out.push(byte >> bit & 1 == 1);
                }
            }
        }
        BinaryWord {
            bits: out,
            erasures: Vec::new(),
        }
    }

    /// Decodes a received word; returns the (padded) message bits.
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] when a block's corruption exceeds the RS
    /// radius or the word length is not a whole number of blocks.
    pub fn decode(&self, word: &BinaryWord) -> Result<Vec<bool>, DecodeError> {
        let cb = self.block_code_bits();
        if word.bits.is_empty() || word.bits.len() % cb != 0 {
            return Err(DecodeError::BadInput(format!(
                "codeword bit length {} not a multiple of {}",
                word.bits.len(),
                cb
            )));
        }
        let blocks = word.bits.len() / cb;
        let mut out = Vec::with_capacity(blocks * self.block_message_bits());
        for b in 0..blocks {
            let mut symbols = vec![0u8; self.rs.block_len()];
            for i in 0..cb {
                if word.bits[b * cb + i] {
                    symbols[i / 8] |= 1 << (i % 8);
                }
            }
            let mut erasures: Vec<usize> = word
                .erasures
                .iter()
                .filter(|&&p| p >= b * cb && p < (b + 1) * cb)
                .map(|&p| (p - b * cb) / 8)
                .collect();
            erasures.sort_unstable();
            erasures.dedup();
            let msg = self.rs.decode(&symbols, &erasures)?;
            for byte in msg {
                for bit in 0..8 {
                    out.push(byte >> bit & 1 == 1);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_multiple_blocks() {
        let code = BinaryCode::rate_one_third();
        let bits: Vec<bool> = (0..500).map(|i| (i * i) % 7 < 3).collect();
        let word = code.encode(&bits);
        assert_eq!(word.bits.len(), code.encoded_len(500));
        let back = code.decode(&word).unwrap();
        assert_eq!(&back[..500], &bits[..]);
    }

    #[test]
    fn empty_message_encodes_one_block() {
        let code = BinaryCode::rate_one_third();
        let word = code.encode(&[]);
        assert_eq!(word.bits.len(), code.block_code_bits());
        let back = code.decode(&word).unwrap();
        assert!(back.iter().all(|&b| !b));
    }

    #[test]
    fn corrects_scattered_bit_flips() {
        let code = BinaryCode::new(30, 10); // 10 symbol corrections per block
        let bits: Vec<bool> = (0..80).map(|i| i % 2 == 0).collect();
        let mut word = code.encode(&bits);
        // 9 flips in distinct symbols of the single block.
        for s in 0..9 {
            word.bits[s * 8 + 3] ^= true;
        }
        let back = code.decode(&word).unwrap();
        assert_eq!(&back[..80], &bits[..]);
    }

    #[test]
    fn deletions_as_erasures_double_budget() {
        let code = BinaryCode::new(30, 10); // 20 erasures per block
        let bits: Vec<bool> = (0..80).map(|i| i % 5 == 0).collect();
        let mut word = code.encode(&bits);
        for s in 0..19 {
            let p = s * 8 + 1;
            word.bits[p] ^= true;
            word.erasures.push(p);
        }
        let back = code.decode(&word).unwrap();
        assert_eq!(&back[..80], &bits[..]);
    }

    #[test]
    fn rejects_wrong_length() {
        let code = BinaryCode::rate_one_third();
        let word = BinaryWord {
            bits: vec![false; 17],
            erasures: vec![],
        };
        assert!(code.decode(&word).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_roundtrip_with_noise(
            bits in proptest::collection::vec(any::<bool>(), 1..300),
            flips in proptest::collection::btree_set(0usize..240, 0..8),
        ) {
            let code = BinaryCode::rate_one_third();
            let mut word = code.encode(&bits);
            // Flip bits but keep per-block symbol-error count within radius:
            // 8 flips touch at most 8 symbols; radius is 10 per block, and
            // flips may spread across blocks, only reducing per-block load.
            for f in flips {
                let p = f % word.bits.len();
                word.bits[p] ^= true;
                word.erasures.push(p); // tell decoder: treat as erasure
            }
            let back = code.decode(&word).unwrap();
            prop_assert_eq!(&back[..bits.len()], &bits[..]);
        }

        #[test]
        fn clean_roundtrip_any_length(
            bits in proptest::collection::vec(any::<bool>(), 0..600),
        ) {
            // Block padding must be transparent at every message length,
            // including the empty message and exact block boundaries.
            let code = BinaryCode::rate_one_third();
            let back = code.decode(&code.encode(&bits)).unwrap();
            prop_assert_eq!(&back[..bits.len()], &bits[..]);
            prop_assert!(back[bits.len()..].iter().all(|&b| !b));
        }
    }
}
