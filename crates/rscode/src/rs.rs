//! Systematic Reed–Solomon codec over GF(2^8) with joint error/erasure
//! decoding.
//!
//! Encoding is systematic: `codeword = message ‖ parity` where parity is the
//! remainder of `message(x) · x^(n−k)` modulo the generator polynomial
//! `g(x) = ∏_{i=0}^{n−k−1} (x − α^i)`.
//!
//! Decoding follows the classic pipeline, generalized for erasures:
//! syndromes → erasure-locator Γ(x) → modified syndromes → Berlekamp–Massey
//! for the error locator Λ(x) → Chien search → Forney error values.

use gf2::poly::Poly256;
use gf2::Gf256;
use std::fmt;

/// Failure modes of [`ReedSolomon::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The corruption pattern exceeds the code's capability
    /// (`2e + s > n − k`) and decoding failed.
    TooManyErrors,
    /// An input slice had the wrong length or an erasure index was out of
    /// range.
    BadInput(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::TooManyErrors => write!(f, "corruption exceeds decoding radius"),
            DecodeError::BadInput(s) => write!(f, "bad decoder input: {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A systematic RS(n, k) code over GF(2^8).
///
/// # Examples
///
/// ```
/// use rscode::ReedSolomon;
/// let rs = ReedSolomon::new(15, 9).unwrap();
/// let msg = b"hello-rs!";
/// let mut cw = rs.encode(msg).unwrap();
/// cw[0] ^= 0x55;      // error
/// cw[7] ^= 0xaa;      // error
/// cw[14] = 0;         // erasure (position told to the decoder)
/// let decoded = rs.decode(&cw, &[14]).unwrap();
/// assert_eq!(&decoded, msg);
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    generator: Poly256,
}

impl ReedSolomon {
    /// Creates an RS(n, k) code.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `k == 0`, `k >= n`, or `n > 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, DecodeError> {
        if k == 0 || k >= n || n > 255 {
            return Err(DecodeError::BadInput(format!(
                "invalid RS parameters n={n}, k={k}"
            )));
        }
        let mut generator = Poly256::one();
        for i in 0..n - k {
            // (x + α^i); characteristic 2 so minus is plus.
            generator = generator.mul(&Poly256::from_coeffs(vec![Gf256::alpha(i), Gf256::ONE]));
        }
        Ok(ReedSolomon { n, k, generator })
    }

    /// Block length `n` in symbols.
    pub fn block_len(&self) -> usize {
        self.n
    }

    /// Message length `k` in symbols.
    pub fn message_len(&self) -> usize {
        self.k
    }

    /// Number of parity symbols `n − k`.
    pub fn parity_len(&self) -> usize {
        self.n - self.k
    }

    /// Systematically encodes a `k`-byte message into an `n`-byte codeword.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `message.len() != k`.
    pub fn encode(&self, message: &[u8]) -> Result<Vec<u8>, DecodeError> {
        if message.len() != self.k {
            return Err(DecodeError::BadInput(format!(
                "message length {} != k={}",
                message.len(),
                self.k
            )));
        }
        // message(x) · x^(n−k) mod g(x); message[0] is the highest-degree
        // coefficient so the codeword reads message-first on the wire.
        let coeffs: Vec<Gf256> = message.iter().rev().map(|&b| Gf256(b)).collect();
        let shifted = Poly256::from_coeffs(coeffs).shift(self.n - self.k);
        let (_, rem) = shifted.div_rem(&self.generator);
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(message);
        // Parity, highest degree first, padded to n−k symbols.
        for i in (0..self.n - self.k).rev() {
            out.push(rem.coeff(i).0);
        }
        Ok(out)
    }

    /// Converts a received word to the polynomial view used internally:
    /// `r(x) = Σ received[j] x^(n−1−j)`.
    fn word_poly(&self, word: &[u8]) -> Poly256 {
        Poly256::from_coeffs(word.iter().rev().map(|&b| Gf256(b)).collect())
    }

    /// Decodes an `n`-byte received word back to the `k`-byte message.
    ///
    /// `erasures` lists positions (indices into `received`) known to be
    /// corrupted — e.g. rounds where a deletion left the receiver with no
    /// symbol; the byte value at those positions is ignored.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::BadInput`] for wrong lengths or out-of-range
    ///   erasure positions.
    /// * [`DecodeError::TooManyErrors`] when `2e + s > n − k` (detected
    ///   either structurally or by verification re-encode).
    pub fn decode(&self, received: &[u8], erasures: &[usize]) -> Result<Vec<u8>, DecodeError> {
        if received.len() != self.n {
            return Err(DecodeError::BadInput(format!(
                "received length {} != n={}",
                received.len(),
                self.n
            )));
        }
        let mut erasures: Vec<usize> = erasures.to_vec();
        erasures.sort_unstable();
        erasures.dedup();
        if erasures.iter().any(|&p| p >= self.n) {
            return Err(DecodeError::BadInput(
                "erasure position out of range".into(),
            ));
        }
        let nk = self.n - self.k;
        if erasures.len() > nk {
            return Err(DecodeError::TooManyErrors);
        }

        // Syndromes S_i = r(α^i), i = 0..n−k−1.
        let r = self.word_poly(received);
        let syndromes: Vec<Gf256> = (0..nk).map(|i| r.eval(Gf256::alpha(i))).collect();
        if syndromes.iter().all(|s| s.is_zero()) && erasures.is_empty() {
            return Ok(received[..self.k].to_vec());
        }
        let s_poly = Poly256::from_coeffs(syndromes.clone());

        // Erasure locator Γ(x) = ∏ (1 + X_j x), X_j = α^(n−1−pos).
        let erasure_roots: Vec<Gf256> = erasures
            .iter()
            .map(|&p| Gf256::alpha(self.n - 1 - p))
            .collect();
        let gamma = Poly256::from_locator_roots(&erasure_roots);

        // Modified syndromes Ξ(x) = S(x)·Γ(x) mod x^(n−k).
        let xi = s_poly.mul(&gamma).truncated(nk);

        // Berlekamp–Massey on the modified syndromes for Λ(x); may run for
        // at most ⌊(n−k−s)/2⌋ errors.
        let lambda = berlekamp_massey(xi.coeffs(), nk, erasures.len());

        // Combined locator Ψ(x) = Λ(x)·Γ(x); roots locate all corruptions.
        let psi = lambda.mul(&gamma);
        let psi_deg = psi.degree().unwrap_or(0);
        if 2 * (lambda.degree().unwrap_or(0)) + erasures.len() > nk {
            return Err(DecodeError::TooManyErrors);
        }

        // Chien search: find positions p with Ψ(α^{-(n-1-p)}) = 0.
        let mut positions = Vec::new();
        for p in 0..self.n {
            let x_inv = Gf256::alpha(self.n - 1 - p).inv();
            if psi.eval(x_inv).is_zero() {
                positions.push(p);
            }
        }
        if positions.len() != psi_deg {
            // Locator has roots outside the grid or repeated roots.
            return Err(DecodeError::TooManyErrors);
        }

        // Forney: error magnitude at position p is
        // e_p = X_p · Ω(X_p^{-1}) / Ψ'(X_p^{-1}),
        // with Ω(x) = S(x)·Ψ(x) mod x^(n−k) (using the α^0-first syndrome
        // convention).
        let omega = s_poly.mul(&psi).truncated(nk);
        let psi_deriv = psi.derivative();
        let mut corrected = received.to_vec();
        for &p in &positions {
            let xp = Gf256::alpha(self.n - 1 - p);
            let xinv = xp.inv();
            let denom = psi_deriv.eval(xinv);
            if denom.is_zero() {
                return Err(DecodeError::TooManyErrors);
            }
            let magnitude = xp * omega.eval(xinv) / denom;
            corrected[p] = (Gf256(corrected[p]) + magnitude).0;
        }

        // Verify: all syndromes of the corrected word must vanish.
        let cr = self.word_poly(&corrected);
        for i in 0..nk {
            if !cr.eval(Gf256::alpha(i)).is_zero() {
                return Err(DecodeError::TooManyErrors);
            }
        }
        Ok(corrected[..self.k].to_vec())
    }
}

/// Berlekamp–Massey over GF(2^8), started after `s` erasure positions are
/// already absorbed: finds the shortest LFSR Λ(x) generating the modified
/// syndrome sequence, with the error budget `⌊(nk − s)/2⌋`.
fn berlekamp_massey(xi: &[Gf256], nk: usize, s: usize) -> Poly256 {
    let mut lambda = Poly256::one();
    let mut b = Poly256::one();
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb = Gf256::ONE;
    for r in s..nk {
        // Discrepancy d = Σ_{i=0}^{l} λ_i · Ξ_{r−i}.
        let mut d = Gf256::ZERO;
        for i in 0..=l.min(r) {
            let xi_v = if r - i < xi.len() {
                xi[r - i]
            } else {
                Gf256::ZERO
            };
            d += lambda.coeff(i) * xi_v;
        }
        if d.is_zero() {
            m += 1;
        } else if 2 * l <= r - s {
            let t = lambda.clone();
            // λ(x) ← λ(x) − (d/b)·x^m·B(x)
            lambda = lambda.add(&b.shift(m).scale(d / bb));
            l = r - s + 1 - l;
            b = t;
            bb = d;
            m = 1;
        } else {
            lambda = lambda.add(&b.shift(m).scale(d / bb));
            m += 1;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rs(n: usize, k: usize) -> ReedSolomon {
        ReedSolomon::new(n, k).unwrap()
    }

    #[test]
    fn roundtrip_clean() {
        let c = rs(31, 19);
        let msg: Vec<u8> = (0..19).map(|i| (i * 7 + 3) as u8).collect();
        let cw = c.encode(&msg).unwrap();
        assert_eq!(cw.len(), 31);
        assert_eq!(&cw[..19], &msg[..]);
        assert_eq!(c.decode(&cw, &[]).unwrap(), msg);
    }

    #[test]
    fn corrects_max_errors() {
        let c = rs(15, 7); // corrects 4 errors
        let msg = [9, 8, 7, 6, 5, 4, 3];
        let cw = c.encode(&msg).unwrap();
        let mut bad = cw.clone();
        for (i, pos) in [1usize, 5, 9, 13].iter().enumerate() {
            bad[*pos] ^= (i + 1) as u8;
        }
        assert_eq!(c.decode(&bad, &[]).unwrap(), msg);
    }

    #[test]
    fn corrects_max_erasures() {
        let c = rs(15, 7); // corrects 8 erasures
        let msg = [1, 2, 3, 4, 5, 6, 7];
        let cw = c.encode(&msg).unwrap();
        let mut bad = cw.clone();
        let erasures = [0usize, 2, 4, 6, 8, 10, 12, 14];
        for &p in &erasures {
            bad[p] = 0xFF;
        }
        assert_eq!(c.decode(&bad, &erasures).unwrap(), msg);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures() {
        let c = rs(20, 10); // n-k = 10: e.g. 3 errors + 4 erasures.
        let msg: Vec<u8> = (0..10).map(|i| 255 - i as u8).collect();
        let cw = c.encode(&msg).unwrap();
        let mut bad = cw.clone();
        bad[0] ^= 1;
        bad[5] ^= 99;
        bad[19] ^= 200;
        let erasures = [2usize, 7, 11, 13];
        for &p in &erasures {
            bad[p] = 0;
        }
        assert_eq!(c.decode(&bad, &erasures).unwrap(), msg);
    }

    #[test]
    fn rejects_beyond_radius() {
        let c = rs(15, 11); // corrects 2 errors
        let msg = [0u8; 11];
        let cw = c.encode(&msg).unwrap();
        let mut bad = cw.clone();
        bad[0] = 1;
        bad[3] = 2;
        bad[6] = 3;
        // Three errors: must either fail or (rarely for RS, never for 0-word)
        // miscorrect; here it must not return the original message claiming
        // success with wrong syndrome. Accept either error or wrong output,
        // but not silent wrong success of the verification.
        match c.decode(&bad, &[]) {
            Err(DecodeError::TooManyErrors) => {}
            Ok(m) => assert_ne!(m, msg.to_vec(), "decoded to a *different* valid codeword"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn erasure_value_is_ignored() {
        let c = rs(9, 5);
        let msg = [10, 20, 30, 40, 50];
        let cw = c.encode(&msg).unwrap();
        for val in [0u8, 1, 77, 255] {
            let mut bad = cw.clone();
            bad[4] = val;
            assert_eq!(c.decode(&bad, &[4]).unwrap(), msg);
        }
    }

    #[test]
    fn bad_inputs() {
        assert!(ReedSolomon::new(10, 0).is_err());
        assert!(ReedSolomon::new(10, 10).is_err());
        assert!(ReedSolomon::new(300, 10).is_err());
        let c = rs(10, 5);
        assert!(matches!(c.encode(&[0; 4]), Err(DecodeError::BadInput(_))));
        assert!(matches!(
            c.decode(&[0; 9], &[]),
            Err(DecodeError::BadInput(_))
        ));
        assert!(matches!(
            c.decode(&[0; 10], &[10]),
            Err(DecodeError::BadInput(_))
        ));
    }

    #[test]
    fn too_many_erasures_rejected() {
        let c = rs(10, 6);
        let cw = c.encode(&[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(
            c.decode(&cw, &[0, 1, 2, 3, 4]),
            Err(DecodeError::TooManyErrors)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn decodes_any_pattern_within_radius(
            msg in proptest::collection::vec(any::<u8>(), 12),
            err_pos in proptest::collection::btree_set(0usize..28, 0..=4),
            era_pos in proptest::collection::btree_set(0usize..28, 0..=6),
            vals in proptest::collection::vec(1u8.., 12),
        ) {
            let c = rs(28, 12); // n-k = 16
            let errs: Vec<usize> = err_pos.difference(&era_pos).copied().collect();
            prop_assume!(2 * errs.len() + era_pos.len() <= 16);
            let cw = c.encode(&msg).unwrap();
            let mut bad = cw.clone();
            for (i, &p) in errs.iter().enumerate() {
                bad[p] ^= vals[i % vals.len()];
            }
            for (i, &p) in era_pos.iter().enumerate() {
                bad[p] = bad[p].wrapping_add(vals[(i + 3) % vals.len()]);
            }
            let erasures: Vec<usize> = era_pos.iter().copied().collect();
            prop_assert_eq!(c.decode(&bad, &erasures).unwrap(), msg);
        }

        #[test]
        fn erasures_only_up_to_full_distance(
            msg in proptest::collection::vec(any::<u8>(), 9),
            era_pos in proptest::collection::btree_set(0usize..24, 0..=15),
            vals in proptest::collection::vec(any::<u8>(), 9),
        ) {
            // With no errors, the whole n−k budget is available to
            // erasures (the "deletions are erasures" observation that
            // makes the fully-utilized exchange robust).
            let c = rs(24, 9); // n-k = 15
            let cw = c.encode(&msg).unwrap();
            let mut bad = cw.clone();
            for (i, &p) in era_pos.iter().enumerate() {
                bad[p] = vals[i % vals.len()];
            }
            let erasures: Vec<usize> = era_pos.iter().copied().collect();
            prop_assert_eq!(c.decode(&bad, &erasures).unwrap(), msg);
        }

        #[test]
        fn beyond_budget_is_never_silently_wrong(
            msg in proptest::collection::vec(any::<u8>(), 5),
            err_pos in proptest::collection::btree_set(0usize..15, 5..=9),
            vals in proptest::collection::vec(1u8.., 9),
        ) {
            // 5..9 errors on an RS(15,5) code (radius 5) may exceed the
            // budget. The decoder must then either report failure or
            // return a message whose codeword is within the decoding
            // radius of the received word — i.e. a legitimate nearest
            // codeword — never an inconsistent "success".
            let c = rs(15, 5);
            let cw = c.encode(&msg).unwrap();
            let mut bad = cw.clone();
            for (i, &p) in err_pos.iter().enumerate() {
                bad[p] ^= vals[i % vals.len()];
            }
            match c.decode(&bad, &[]) {
                Err(_) => {}
                Ok(m2) => {
                    let cw2 = c.encode(&m2).unwrap();
                    let dist = cw2.iter().zip(&bad).filter(|(a, b)| a != b).count();
                    prop_assert!(
                        dist <= 5,
                        "decoder claimed success at distance {} > radius", dist
                    );
                }
            }
        }
    }
}
