//! Reed–Solomon error-and-erasure coding over GF(2^8).
//!
//! The paper's randomness-exchange step (Algorithm 5) protects each hash
//! seed with "a standard binary error-correction code with constant rate
//! and constant distance" (Theorem 2.1), and observes (§3.1, footnote 9)
//! that during this fully-utilized exchange *deletions are erasures*:
//! the receiver expects a symbol every round, so a missing symbol is a
//! located corruption. We therefore implement a systematic Reed–Solomon
//! codec with joint error/erasure decoding (Berlekamp–Massey + Chien +
//! Forney), plus a bit-level wrapper [`BinaryCode`] that maps a bit stream
//! onto RS symbols.
//!
//! An RS(n, k) code corrects any pattern of `e` symbol errors and `s`
//! symbol erasures with `2e + s ≤ n − k`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod rs;

pub use binary::{BinaryCode, BinaryWord};
pub use rs::{DecodeError, ReedSolomon};
