//! Offline shim for the slice of `serde_json` this workspace uses:
//! [`Value`] (owned by the `serde` shim), [`to_value`]/[`to_string`], and
//! a [`json!`] macro covering object/array/scalar literals.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Number, Value};

/// Serialization error. The shim's rendering is infallible, so this type
/// is never constructed; it exists so call sites can keep the
/// `Result`-based serde_json signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Renders any [`serde::Serialize`] type as a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Renders any [`serde::Serialize`] type as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports the forms the workspace uses: `null`, `[elem, ...]`, and
/// `{"key": expr, ...}` where each value is any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val).unwrap()) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_objects() {
        let v = json!({"a": 1u32, "b": "s", "c": Option::<u64>::None, "d": 1.5f64});
        assert_eq!(v.to_string(), r#"{"a":1,"b":"s","c":null,"d":1.5}"#);
    }

    #[test]
    fn json_macro_arrays_and_scalars() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!([1u8, 2u8]).to_string(), "[1,2]");
        assert_eq!(json!(true).to_string(), "true");
    }
}
