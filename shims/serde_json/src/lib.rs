//! Offline shim for the slice of `serde_json` this workspace uses:
//! [`Value`] (owned by the `serde` shim), [`to_value`]/[`to_string`],
//! [`from_str`]/[`from_value`] over a small recursive-descent JSON
//! parser, and a [`json!`] macro covering object/array/scalar literals.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Number, Value};

/// Serialization/deserialization error carrying a short message.
/// Rendering is infallible (the serialize-side functions never construct
/// one); parse and decode failures name the offending position or field.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Renders any [`serde::Serialize`] type as a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Renders any [`serde::Serialize`] type as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_string())
}

/// Decodes a [`serde::Deserialize`] type out of an already-parsed value.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_json(value)?)
}

/// Parses JSON text and decodes it into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    from_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.pos += 1;
                                self.eat("\\u")
                                    .map_err(|_| self.err("expected low surrogate"))?;
                                self.pos -= 1;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits after the cursor's `u`, leaving the cursor
    /// on the last digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            // `-0` and friends still parse as integers.
            let mag: i64 = stripped
                .parse::<i64>()
                .map_err(|_| self.err("integer out of range"))?;
            Number::I64(-mag)
        } else {
            Number::U64(text.parse().map_err(|_| self.err("integer out of range"))?)
        };
        Ok(Value::Number(n))
    }
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports the forms the workspace uses: `null`, `[elem, ...]`, and
/// `{"key": expr, ...}` where each value is any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val).unwrap()) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects() {
        let v = json!({"a": 1u32, "b": "s", "c": Option::<u64>::None, "d": 1.5f64});
        assert_eq!(v.to_string(), r#"{"a":1,"b":"s","c":null,"d":1.5}"#);
    }

    #[test]
    fn json_macro_arrays_and_scalars() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!([1u8, 2u8]).to_string(), "[1,2]");
        assert_eq!(json!(true).to_string(), "true");
    }

    #[test]
    fn parse_round_trips_values() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            r#"{"a":3,"b":"x\"y\n","c":[null,true],"d":-7,"e":0.25}"#,
            r#"{"nested":{"k":[{"deep":1}]},"f":1.5e3}"#,
        ] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn parse_numbers_keep_kind() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u64>("1.5").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>(r#""unterminated"#).is_err());
    }

    #[test]
    fn parse_string_escapes() {
        let s: String = from_str(r#""aA\n\t\\\" é""#).unwrap();
        assert_eq!(s, "aA\n\t\\\" é");
        let pair: String = from_str(r#""😀""#).unwrap();
        assert_eq!(pair, "😀");
    }
}
