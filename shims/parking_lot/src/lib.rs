//! Offline shim for the slice of `parking_lot` this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no poisoning).
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }
}
