//! Offline shim for the slice of `criterion` this workspace uses.
//!
//! Keeps the bench sources byte-identical to what they'd look like
//! against real criterion. Measurement is intentionally lightweight: each
//! benchmark warms up briefly, then runs timed batches for ~100ms and
//! reports mean wall-clock time per iteration. No statistics, plots, or
//! baselines — swap in the real crate for those.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Throughput annotation; recorded for display parity, not used in math.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark id (`function/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark id by `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: run once, size batches to
        // ~10ms, then measure for ~100ms total.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let deadline = Instant::now() + Duration::from_millis(100);
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch as u64;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(id: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("{id:<40} time: {value:>10.3} {unit}/iter");
}

fn run_bench(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    report(id, b.mean_ns);
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into_text(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's timing loop is self-sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; throughput is not folded into the report.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_text());
        run_bench(&full, &mut f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.text);
        run_bench(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("id", 3), &3u64, |b, &x| {
            b.iter(|| x.wrapping_mul(7))
        });
        g.finish();
    }
}
