//! Offline shim for the slice of `criterion` this workspace uses.
//!
//! Keeps the bench sources byte-identical to what they'd look like
//! against real criterion. Measurement is intentionally lightweight: each
//! benchmark warms up briefly, then runs timed batches for ~100ms and
//! reports mean, min, max and std-dev wall-clock time per iteration
//! (statistics are over per-batch means). No plots or baselines — swap in
//! the real crate for those.
//!
//! Set `CRITERION_SHIM_JSON=<path>` to additionally append one JSON line
//! per benchmark (`id`, `mean_ns`, `min_ns`, `max_ns`, `stddev_ns`,
//! `batches`, `iters`) — the format of the repo's `BENCH_*.json` files.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Throughput annotation; recorded for display parity, not used in math.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark id (`function/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark id by `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

/// Per-iteration wall-clock statistics of one benchmark, over the means
/// of the timed batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest batch mean.
    pub min_ns: f64,
    /// Slowest batch mean.
    pub max_ns: f64,
    /// Population standard deviation of batch means.
    pub stddev_ns: f64,
    /// Number of timed batches.
    pub batches: u64,
    /// Total iterations executed across batches.
    pub iters: u64,
}

impl Stats {
    fn from_batches(batch_means_ns: &[f64], iters: u64) -> Stats {
        let n = batch_means_ns.len().max(1) as f64;
        let mean = batch_means_ns.iter().sum::<f64>() / n;
        let var = batch_means_ns
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        Stats {
            mean_ns: mean,
            min_ns: batch_means_ns.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: batch_means_ns
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
            stddev_ns: var.sqrt(),
            batches: batch_means_ns.len() as u64,
            iters,
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    stats: Stats,
}

impl Bencher {
    /// Times `f`, storing per-iteration wall-clock statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: run once, size batches to
        // ~10ms, then measure for ~100ms total.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        let deadline = Instant::now() + Duration::from_millis(100);
        let mut iters = 0u64;
        let mut batch_means = Vec::new();
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            batch_means.push(elapsed.as_nanos() as f64 / batch as f64);
            iters += batch as u64;
        }
        self.stats = Stats::from_batches(&batch_means, iters);
    }
}

fn scaled(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    }
}

fn report(id: &str, s: Stats) {
    let (value, unit) = scaled(s.mean_ns);
    let (lo, lo_u) = scaled(s.min_ns);
    let (hi, hi_u) = scaled(s.max_ns);
    let (sd, sd_u) = scaled(s.stddev_ns);
    println!(
        "{id:<40} time: {value:>10.3} {unit}/iter  \
         [min {lo:.3} {lo_u}, max {hi:.3} {hi_u}, σ {sd:.3} {sd_u}]"
    );
}

fn emit_json(id: &str, s: Stats) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let row = format!(
        "{{\"id\":\"{id}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
         \"stddev_ns\":{:.1},\"batches\":{},\"iters\":{}}}",
        s.mean_ns, s.min_ns, s.max_ns, s.stddev_ns, s.batches, s.iters
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{row}");
    }
}

fn run_bench(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        stats: Stats::default(),
    };
    f(&mut b);
    report(id, b.stats);
    emit_json(id, b.stats);
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into_text(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's timing loop is self-sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; throughput is not folded into the report.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_text());
        run_bench(&full, &mut f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.text);
        run_bench(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            stats: Stats::default(),
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(5));
        assert!(b.stats.mean_ns > 0.0);
        assert!(b.stats.min_ns <= b.stats.mean_ns && b.stats.mean_ns <= b.stats.max_ns);
        assert!(b.stats.stddev_ns >= 0.0);
        assert!(b.stats.batches >= 1 && b.stats.iters >= 1);
    }

    #[test]
    fn stats_over_known_batches() {
        let s = Stats::from_batches(&[1.0, 3.0], 2);
        assert!((s.mean_ns - 2.0).abs() < 1e-12);
        assert!((s.min_ns - 1.0).abs() < 1e-12);
        assert!((s.max_ns - 3.0).abs() < 1e-12);
        assert!((s.stddev_ns - 1.0).abs() < 1e-12);
        assert_eq!(s.batches, 2);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("id", 3), &3u64, |b, &x| {
            b.iter(|| x.wrapping_mul(7))
        });
        g.finish();
    }
}
