//! Offline shim for `crossbeam::channel`: a bounded MPMC channel plus a
//! minimal [`Select`] for waiting on several receivers at once.
//!
//! Implements exactly the API subset the workspace uses —
//! [`bounded`], `send`/`try_send`, `recv`/`try_recv`/`recv_timeout`, and
//! `Select::{new, recv, ready_timeout}` — with the real crate's
//! semantics:
//!
//! * **MPMC**: both [`Sender`] and [`Receiver`] are `Clone`; any number
//!   of threads may send and receive on the same channel.
//! * **Bounded**: [`Sender::send`] blocks while the queue is full;
//!   [`Sender::try_send`] returns [`TrySendError::Full`] instead.
//! * **Disconnection**: a channel disconnects when every `Sender` *or*
//!   every `Receiver` is dropped. Receivers drain buffered messages
//!   before reporting [`TryRecvError::Disconnected`]; senders fail fast.
//! * **Readiness, not completion**: [`Select::ready_timeout`] reports an
//!   operation index that was ready at some point — the caller performs
//!   the actual `try_recv` and must tolerate losing the race.
//!
//! Like the rest of this shim crate, swapping in the real
//! `crossbeam`/`crossbeam-channel` is a one-line `Cargo.toml` change.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`]: every receiver was dropped. The
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity; the message is handed back.
    Full(T),
    /// Every receiver was dropped; the message is handed back.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender was dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Empty and every sender was dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline elapsed with nothing to receive.
    Timeout,
    /// Empty and every sender was dropped.
    Disconnected,
}

/// Error returned by [`Select::ready_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub struct ReadyTimeoutError;

/// A watcher registered by a [`Select`]: one flag + condvar pair shared
/// across all the receivers the select waits on. Senders (and
/// disconnecting handles) set the flag and notify.
struct Waker {
    fired: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    fn wake(&self) {
        *self.fired.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Select watchers to wake on message arrival or disconnection.
    watchers: Vec<Arc<Waker>>,
}

struct Chan<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    /// Receivers (and selects) wait here for messages.
    not_empty: Condvar,
    /// Blocked senders wait here for space.
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn wake_watchers(inner: &mut Inner<T>) {
        for w in &inner.watchers {
            w.wake();
        }
    }
}

/// The sending half of a [`bounded`] channel. Cloneable (MPMC).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a [`bounded`] channel. Cloneable (MPMC).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a bounded MPMC channel holding at most `cap` messages.
///
/// # Panics
///
/// Panics if `cap == 0` (rendezvous channels are not part of this shim's
/// subset — the workspace always buffers).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity channels are not supported");
    let chan = Arc::new(Chan {
        cap,
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receivers: 1,
            watchers: Vec::new(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Receivers blocked in recv and selects must observe the
            // disconnection.
            Chan::wake_watchers(&mut inner);
            drop(inner);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Blocked senders must observe the disconnection.
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends, blocking while the queue is full. Fails only when every
    /// receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < self.chan.cap {
                inner.queue.push_back(msg);
                Chan::wake_watchers(&mut inner);
                drop(inner);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            inner = self.chan.not_full.wait(inner).unwrap();
        }
    }

    /// Non-blocking send: [`TrySendError::Full`] when at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.queue.len() >= self.chan.cap {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        Chan::wake_watchers(&mut inner);
        drop(inner);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking while the queue is empty. Fails only when the
    /// queue is empty *and* every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .chan
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
            if res.timed_out() && inner.queue.is_empty() {
                return if inner.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this receiver is ready: a message is buffered or the
    /// channel is disconnected (so `try_recv` would not return `Empty`).
    fn is_ready(&self) -> bool {
        let inner = self.chan.inner.lock().unwrap();
        !inner.queue.is_empty() || inner.senders == 0
    }

    fn watch(&self, w: &Arc<Waker>) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.watchers.push(Arc::clone(w));
    }

    fn unwatch(&self, w: &Arc<Waker>) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.watchers.retain(|x| !Arc::ptr_eq(x, w));
    }
}

/// Type-erased readiness handle: what [`Select`] needs from a receiver.
trait Watchable {
    fn ready(&self) -> bool;
    fn watch(&self, w: &Arc<Waker>);
    fn unwatch(&self, w: &Arc<Waker>);
}

impl<T> Watchable for Receiver<T> {
    fn ready(&self) -> bool {
        self.is_ready()
    }
    fn watch(&self, w: &Arc<Waker>) {
        Receiver::watch(self, w)
    }
    fn unwatch(&self, w: &Arc<Waker>) {
        Receiver::unwatch(self, w)
    }
}

/// Waits for any of several receivers to become ready.
///
/// Usage matches the real crate's readiness API: register each receiver
/// with [`Select::recv`] (which returns that operation's index), then
/// call [`Select::ready_timeout`]; it blocks until some registered
/// receiver has a buffered message or is disconnected, and returns the
/// index. Readiness is advisory — another consumer may win the race, so
/// follow up with `try_recv` and retry on `Empty`.
pub struct Select<'a> {
    ops: Vec<&'a dyn Watchable>,
}

impl<'a> Select<'a> {
    /// An empty select.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Select { ops: Vec::new() }
    }

    /// Registers a receive operation; returns its operation index.
    pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
        self.ops.push(r);
        self.ops.len() - 1
    }

    /// Blocks until a registered operation is ready, at most `timeout`.
    /// Returns the lowest ready operation index.
    ///
    /// # Panics
    ///
    /// Panics if no operation was registered.
    pub fn ready_timeout(&mut self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
        assert!(!self.ops.is_empty(), "select with no operations");
        let deadline = Instant::now() + timeout;
        let waker = Arc::new(Waker {
            fired: Mutex::new(false),
            cv: Condvar::new(),
        });
        for op in &self.ops {
            op.watch(&waker);
        }
        // Ensure deregistration on every exit path.
        struct Unwatch<'s, 'a> {
            ops: &'s [&'a dyn Watchable],
            waker: &'s Arc<Waker>,
        }
        impl Drop for Unwatch<'_, '_> {
            fn drop(&mut self) {
                for op in self.ops {
                    op.unwatch(self.waker);
                }
            }
        }
        let _guard = Unwatch {
            ops: &self.ops,
            waker: &waker,
        };
        loop {
            if let Some(i) = self.ops.iter().position(|op| op.ready()) {
                return Ok(i);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ReadyTimeoutError);
            }
            let mut fired = waker.fired.lock().unwrap();
            // A wake that raced ahead of this lock (between the readiness
            // scan above and here) left `fired = true`; the condvar alone
            // would not remember it, so only wait while the flag is clear.
            if !*fired {
                let (guard, _) = waker.cv.wait_timeout(fired, deadline - now).unwrap();
                fired = guard;
            }
            *fired = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn drained_after_sender_drop_then_disconnected() {
        let (tx, rx) = bounded(4);
        tx.send(7).unwrap();
        drop(tx);
        // Buffered messages survive sender disconnection.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            // Full: blocks until the main thread receives.
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_visits_every_item_exactly_once() {
        const ITEMS: usize = 200;
        let (tx, rx) = bounded::<usize>(8);
        let seen: Arc<Vec<AtomicUsize>> =
            Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            let seen = Arc::clone(&seen);
            consumers.push(std::thread::spawn(move || {
                while let Ok(i) = rx.recv() {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        drop(rx);
        let mut producers = Vec::new();
        for p in 0..2 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in (p..ITEMS).step_by(2) {
                    tx.send(i).unwrap();
                }
            }));
        }
        drop(tx);
        for t in producers {
            t.join().unwrap();
        }
        for t in consumers {
            t.join().unwrap();
        }
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn select_reports_ready_lane() {
        let (tx_a, rx_a) = bounded::<u8>(1);
        let (tx_b, rx_b) = bounded::<u8>(1);
        let mut sel = Select::new();
        let ia = sel.recv(&rx_a);
        let ib = sel.recv(&rx_b);
        assert_eq!(
            sel.ready_timeout(Duration::from_millis(5)),
            Err(ReadyTimeoutError)
        );
        tx_b.send(1).unwrap();
        assert_eq!(sel.ready_timeout(Duration::from_secs(1)), Ok(ib));
        assert_eq!(rx_b.try_recv(), Ok(1));
        tx_a.send(2).unwrap();
        assert_eq!(sel.ready_timeout(Duration::from_secs(1)), Ok(ia));
        assert_eq!(rx_a.try_recv(), Ok(2));
    }

    #[test]
    fn select_wakes_on_cross_thread_send() {
        let (tx, rx) = bounded::<u8>(1);
        let (_tx2, rx2) = bounded::<u8>(1);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(9).unwrap();
        });
        let mut sel = Select::new();
        let i0 = sel.recv(&rx);
        let _i1 = sel.recv(&rx2);
        assert_eq!(sel.ready_timeout(Duration::from_secs(5)), Ok(i0));
        assert_eq!(rx.try_recv(), Ok(9));
        t.join().unwrap();
    }

    #[test]
    fn select_wakes_on_disconnect() {
        let (tx, rx) = bounded::<u8>(1);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            drop(tx);
        });
        let mut sel = Select::new();
        let i0 = sel.recv(&rx);
        assert_eq!(sel.ready_timeout(Duration::from_secs(5)), Ok(i0));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        t.join().unwrap();
    }

    #[test]
    fn ready_timeout_keeps_wake_racing_the_scan() {
        // Regression: a wake landing between the readiness scan and the
        // condvar wait sets `fired`; the selector must consult the flag
        // before waiting, or the wake is lost and the select blocks for
        // the full timeout despite a ready message.
        let (tx, rx) = bounded::<u8>(4);
        let start = Instant::now();
        for i in 0..100u8 {
            let tx = tx.clone();
            let t = std::thread::spawn(move || tx.send(i).unwrap());
            let mut sel = Select::new();
            let idx = sel.recv(&rx);
            assert_eq!(sel.ready_timeout(Duration::from_secs(10)), Ok(idx));
            assert_eq!(rx.recv(), Ok(i));
            t.join().unwrap();
        }
        // Any lost wake would have cost a full 10 s timeout.
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn watchers_are_deregistered() {
        let (tx, rx) = bounded::<u8>(1);
        {
            let mut sel = Select::new();
            sel.recv(&rx);
            let _ = sel.ready_timeout(Duration::from_millis(1));
        }
        assert_eq!(rx.chan.inner.lock().unwrap().watchers.len(), 0);
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }
}
