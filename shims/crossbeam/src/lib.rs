//! Offline shim for `crossbeam::scope`, implemented over
//! `std::thread::scope`, plus a small fork-join pool ([`par_chunks_mut`])
//! for the simulation engine's intra-trial link sharding, plus a bounded
//! MPMC [`channel`] (with [`channel::Select`]) for the serving layer.
//!
//! Matches crossbeam's call shape — `scope(|s| { s.spawn(|_| ...); })`
//! returning `Err` if any scoped thread panicked — with one restriction:
//! the argument handed to a spawned closure is an inert [`NestedScope`]
//! token, so *nested* spawning from inside a worker is not supported (the
//! workspace never does this; closures take `|_|`).

pub mod channel;

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::ScopedJoinHandle;

/// Placeholder for crossbeam's nested-scope argument. Carries no
/// capabilities; exists only so `s.spawn(|_| ...)` type-checks.
pub struct NestedScope(());

/// A scope handle that can spawn threads joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is an inert token
    /// (see [`NestedScope`]); pass `|_|`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&NestedScope(())))
    }
}

/// Runs `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Returns `Err` with the panic payload if `f` or any spawned
/// thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Shared `*mut T` base pointer for the chunk-claiming workers. Safe to
/// share because every chunk offset is claimed exactly once (atomic
/// cursor), so the derived `&mut [T]` slices are pairwise disjoint.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Fork-join over `data` in contiguous chunks, work-stealing style:
/// `threads` scoped workers claim chunks of at least `min_chunk` items
/// off a shared atomic cursor (dynamic self-scheduling, so a slow chunk
/// never idles the other workers) and call `f(start_index, chunk)` on
/// each. Chunks partition `data` in order and are claimed exactly once,
/// so `f` sees every element exactly once with its original index —
/// which worker ran it is the only nondeterminism, making the primitive
/// deterministic for any `f` whose writes stay inside its chunk.
///
/// With `threads <= 1` (or fewer items than one chunk) the call degrades
/// to `f(0, data)` on the caller's thread — the serial fast path.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn par_chunks_mut<T, F>(data: &mut [T], threads: usize, min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let chunk = min_chunk.max(n.div_ceil(threads.max(1) * 4)).max(1);
    let workers = threads.min(n.div_ceil(chunk));
    if workers <= 1 {
        f(0, data);
        return;
    }
    let cursor = AtomicUsize::new(0);
    let base = SendPtr(data.as_mut_ptr());
    // Capture the wrapper by reference (not its raw-pointer field, which
    // 2021-edition disjoint capture would otherwise pull out unwrapped).
    let base = &base;
    scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let len = chunk.min(n - start);
                // SAFETY: `start` values are handed out exactly once per
                // chunk stride, so [start, start+len) ranges are disjoint
                // and within bounds; `data` is mutably borrowed for the
                // whole scope.
                let part = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
                f(start, part);
            });
        }
    })
    .expect("par_chunks_mut worker panicked");
}

/// Type-erased pointer to an in-flight fork-join job. Only dereferenced
/// by workers between job publication and the owning [`WorkerPool::run`]
/// observing `active == 0`, during which the caller keeps the closure
/// alive on its stack.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn() + Sync));

unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per published job; workers detect new work by epoch.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still running the current job.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: std::sync::Mutex<PoolState>,
    work: std::sync::Condvar,
    done: std::sync::Condvar,
}

/// A persistent fork-join pool: `threads - 1` long-lived worker threads
/// plus the caller, sharing [`par_chunks_mut`]-style chunk-claiming
/// regions without respawning OS threads per region. A simulation run
/// enters a parallel region twice per iteration; scoped-thread spawning
/// there costs more than the sharded work saves, which is this pool's
/// whole reason to exist.
///
/// Dispatch is epoch-based: the private `run` method publishes a
/// type-erased
/// closure under the mutex, bumps the epoch, and wakes the workers; each
/// worker runs the closure once (the closure itself loops claiming
/// chunks) and decrements `active`. `run` participates on the calling
/// thread and only returns once every worker has finished, which is what
/// makes lending the workers a non-`'static` closure sound.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool that runs regions on `threads` threads total
    /// (saturated to at least one: the caller). `WorkerPool::new(1)`
    /// spawns nothing and runs every region serially on the caller.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(PoolShared {
            state: std::sync::Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let sh = std::sync::Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            handles,
        }
    }

    /// Total threads participating in a region (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` concurrently on every pool thread (caller included)
    /// and returns once all of them have finished their invocation.
    fn run(&self, f: &(dyn Fn() + Sync)) {
        if self.handles.is_empty() {
            f();
            return;
        }
        // SAFETY: erases the closure's lifetime. Workers only touch the
        // pointer while `active > 0`, and we block below until `active`
        // returns to zero, so the borrow outlives every use.
        let job = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.active = self.handles.len();
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        f();
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
    }

    /// [`par_chunks_mut`] on this pool's threads: workers claim
    /// contiguous chunks of at least `min_chunk` items off an atomic
    /// cursor and call `f(start_index, chunk)` on each. Same determinism
    /// contract as the free function; same serial fast path when the pool
    /// has one thread or the data fits one chunk.
    pub fn run_chunks<T, F>(&self, data: &mut [T], min_chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let chunk = min_chunk.max(n.div_ceil(self.threads * 4)).max(1);
        if self.handles.is_empty() || n <= chunk {
            f(0, data);
            return;
        }
        let cursor = AtomicUsize::new(0);
        let base = SendPtr(data.as_mut_ptr());
        let base = &base;
        self.run(&move || loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let len = chunk.min(n - start);
            // SAFETY: chunk offsets are claimed exactly once, so the
            // derived ranges are disjoint and in bounds; `data` stays
            // mutably borrowed until `run` returns.
            let part = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
            f(start, part);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(sh: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("published epoch carries a job");
                }
                st = sh.work.wait(st).unwrap();
            }
        };
        // SAFETY: `WorkerPool::run` keeps the closure alive until
        // `active` drops to zero, which happens only after this call.
        (unsafe { &*job.0 })();
        let mut st = sh.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            sh.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_join_before_return() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn par_chunks_mut_visits_every_item_once() {
        for threads in [1usize, 2, 3, 8] {
            let mut data: Vec<u64> = vec![0; 257];
            super::par_chunks_mut(&mut data, threads, 4, |start, chunk| {
                for (off, x) in chunk.iter_mut().enumerate() {
                    *x += (start + off) as u64 + 1;
                }
            });
            for (i, x) in data.iter().enumerate() {
                assert_eq!(*x, i as u64 + 1, "threads {threads} index {i}");
            }
        }
    }

    #[test]
    fn worker_pool_runs_many_regions() {
        for threads in [1usize, 2, 3, 8] {
            let pool = super::WorkerPool::new(threads);
            assert_eq!(pool.threads(), threads.max(1));
            let mut data: Vec<u64> = vec![0; 257];
            // Many back-to-back regions on one pool: the epoch handshake
            // must not lose or double-run any worker.
            for round in 0..50u64 {
                pool.run_chunks(&mut data, 4, |start, chunk| {
                    for (off, x) in chunk.iter_mut().enumerate() {
                        *x += (start + off) as u64 + round;
                    }
                });
            }
            for (i, x) in data.iter().enumerate() {
                // sum over rounds of (i + round) = 50*i + 0+1+...+49
                assert_eq!(
                    *x,
                    50 * i as u64 + 49 * 50 / 2,
                    "threads {threads} index {i}"
                );
            }
        }
    }

    #[test]
    fn worker_pool_zero_threads_saturates() {
        let pool = super::WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut one = [1u8];
        pool.run_chunks(&mut one, 1, |_, c| c[0] = 2);
        assert_eq!(one[0], 2);
    }

    #[test]
    fn par_chunks_mut_empty_and_serial() {
        let mut empty: Vec<u8> = Vec::new();
        super::par_chunks_mut(&mut empty, 4, 1, |_, _| panic!("no items"));
        let mut one = [7u8];
        super::par_chunks_mut(&mut one, 4, 16, |start, chunk| {
            assert_eq!(start, 0);
            chunk[0] = 9;
        });
        assert_eq!(one[0], 9);
    }
}
