//! Offline shim for `crossbeam::scope`, implemented over
//! `std::thread::scope`.
//!
//! Matches crossbeam's call shape — `scope(|s| { s.spawn(|_| ...); })`
//! returning `Err` if any scoped thread panicked — with one restriction:
//! the argument handed to a spawned closure is an inert [`NestedScope`]
//! token, so *nested* spawning from inside a worker is not supported (the
//! workspace never does this; closures take `|_|`).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::ScopedJoinHandle;

/// Placeholder for crossbeam's nested-scope argument. Carries no
/// capabilities; exists only so `s.spawn(|_| ...)` type-checks.
pub struct NestedScope(());

/// A scope handle that can spawn threads joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is an inert token
    /// (see [`NestedScope`]); pass `|_|`.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&NestedScope(())))
    }
}

/// Runs `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Returns `Err` with the panic payload if `f` or any spawned
/// thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_join_before_return() {
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
