//! Offline shim for the tiny slice of `serde` this workspace uses.
//!
//! The build is hermetic (no registry access), so instead of the real
//! `serde` data model this crate exposes a single-method [`Serialize`]
//! trait that renders straight into an owned JSON [`Value`], and a
//! mirror-image [`Deserialize`] trait that reads one back out. The
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros (re-exported
//! from the sibling `serde_derive` shim) generate field-by-field impls
//! with the same externally-tagged representation real serde defaults
//! to, so JSON emitted and consumed by `bench`/`experiments` keeps its
//! shape — swapping in the real crates is a `Cargo.toml` change, not a
//! code change.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON document.
///
/// Object keys keep insertion order (serde_json's `preserve_order`
/// behavior) so emitted rows are stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping the integer/float distinction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Value {
    /// Looks up `key` in an object value; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can render themselves as JSON.
///
/// This is the shim's stand-in for `serde::Serialize`; derive it with
/// `#[derive(Serialize)]`.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Value;
}

/// Deserialization failure: a message naming the offending field or the
/// shape mismatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can reconstruct themselves from a JSON [`Value`].
///
/// The shim's stand-in for `serde::Deserialize`; derive it with
/// `#[derive(Deserialize)]` (named-field structs) and drive it from text
/// with `serde_json::from_str`.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a JSON value.
    fn from_json(v: &Value) -> Result<Self, DeError>;
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other}"))),
        }
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(Number::U64(n)) => *n,
                    Value::Number(Number::I64(n)) if *n >= 0 => *n as u64,
                    other => return Err(DeError(format!("expected unsigned integer, found {other}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(Number::I64(n)) => *n,
                    Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => *n as i64,
                    other => return Err(DeError(format!("expected integer, found {other}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_unsigned!(u8, u16, u32, u64, usize);
impl_de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(Number::F64(x)) => Ok(*x),
            Value::Number(Number::U64(n)) => Ok(*n as f64),
            Value::Number(Number::I64(n)) => Ok(*n as f64),
            other => Err(DeError(format!("expected number, found {other}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError(format!("expected array, found {other}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
    )*};
}
macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            // JSON has no NaN/Infinity; follow serde_json's lossy `null`.
            Number::F64(x) if !x.is_finite() => write!(f, "null"),
            Number::F64(x) => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_escapes_and_orders() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(3))),
            ("b".into(), Value::String("x\"y\n".into())),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":3,"b":"x\"y\n","c":[null,true]}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Value::Number(Number::F64(2.0)).to_string(), "2.0");
        assert_eq!(Value::Number(Number::F64(0.25)).to_string(), "0.25");
        assert_eq!(Value::Number(Number::F64(f64::NAN)).to_string(), "null");
    }

    #[test]
    fn option_and_vec_serialize() {
        assert_eq!(Some(4u64).to_json(), Value::Number(Number::U64(4)));
        assert_eq!(Option::<u64>::None.to_json(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::Number(Number::U64(2))
            ])
        );
    }
}
