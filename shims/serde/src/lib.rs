//! Offline shim for the tiny slice of `serde` this workspace uses.
//!
//! The build is hermetic (no registry access), so instead of the real
//! `serde` data model this crate exposes a single-method [`Serialize`]
//! trait that renders straight into an owned JSON [`Value`]. The
//! `#[derive(Serialize)]` macro (re-exported from the sibling
//! `serde_derive` shim) generates field-by-field impls with the same
//! externally-tagged enum representation real serde defaults to, so the
//! JSON emitted by `bench`/`experiments` keeps its shape if the shim is
//! ever swapped for the real crate.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::Serialize;

/// An owned JSON document.
///
/// Object keys keep insertion order (serde_json's `preserve_order`
/// behavior) so emitted rows are stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping the integer/float distinction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

/// Types that can render themselves as JSON.
///
/// This is the shim's stand-in for `serde::Serialize`; derive it with
/// `#[derive(Serialize)]`.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
    )*};
}
macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(n) => write!(f, "{n}"),
            Number::I64(n) => write!(f, "{n}"),
            // JSON has no NaN/Infinity; follow serde_json's lossy `null`.
            Number::F64(x) if !x.is_finite() => write!(f, "null"),
            Number::F64(x) => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_escapes_and_orders() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U64(3))),
            ("b".into(), Value::String("x\"y\n".into())),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":3,"b":"x\"y\n","c":[null,true]}"#);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Value::Number(Number::F64(2.0)).to_string(), "2.0");
        assert_eq!(Value::Number(Number::F64(0.25)).to_string(), "0.25");
        assert_eq!(Value::Number(Number::F64(f64::NAN)).to_string(), "null");
    }

    #[test]
    fn option_and_vec_serialize() {
        assert_eq!(Some(4u64).to_json(), Value::Number(Number::U64(4)));
        assert_eq!(Option::<u64>::None.to_json(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::Number(Number::U64(2))
            ])
        );
    }
}
