//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). `Serialize` supports exactly what the
//! workspace derives on: non-generic structs with named fields and
//! non-generic enums with unit, tuple, and struct variants, using
//! serde's default externally-tagged representation. `Deserialize`
//! covers the flat named-field structs the tooling reads back (bench
//! result rows); missing keys read as `null`, so `Option` fields default
//! to `None` and required fields produce a named error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving on `{name}`)");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        t => panic!("expected `{{ ... }}` body for `{name}`, found {t:?}"),
    };

    let out = match kind.as_str() {
        "struct" => derive_struct(&name, body),
        "enum" => derive_enum(&name, body),
        k => panic!("cannot derive Serialize for `{k} {name}`"),
    };
    out.parse()
        .expect("serde shim derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;
    if kind != "struct" {
        panic!(
            "serde shim derive(Deserialize) supports only structs (deriving on `{kind} {name}`)"
        );
    }
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving on `{name}`)");
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        t => panic!("expected `{{ ... }}` body for `{name}`, found {t:?}"),
    };
    let fields: Vec<String> = named_fields(body)
        .into_iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_json(\
                 __v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::DeError(\
                 ::std::format!(\"field `{f}`: {{e}}\")))?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_json(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         \t\t::std::result::Result::Ok({name} {{\n\
         \t\t\t{}\n\
         \t\t}})\n\
         \t}}\n\
         }}",
        fields.join("\n\t\t\t")
    )
    .parse()
    .expect("serde shim derive generated invalid Rust")
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix, returning the new cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Parses `name: Type, ...` named-field lists, returning the field names.
/// Type tokens are skipped with `<`/`>` depth tracking so generic
/// arguments containing commas do not split a field.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected field name, found {t}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("expected `:` after field `{name}`, found {t}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the top-level comma-separated entries of a tuple-variant body.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    let mut saw_token_since_comma = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                saw_token_since_comma = false;
            }
            _ => {
                if !saw_token_since_comma {
                    arity += 1;
                    saw_token_since_comma = true;
                }
            }
        }
    }
    arity
}

fn object_of(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("(::std::string::String::from(\"{k}\"), {v})"))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn derive_struct(name: &str, body: TokenStream) -> String {
    let pairs: Vec<(String, String)> = named_fields(body)
        .into_iter()
        .map(|f| (f.clone(), format!("::serde::Serialize::to_json(&self.{f})")))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_json(&self) -> ::serde::Value {{\n\
         \t\t{}\n\
         \t}}\n\
         }}",
        object_of(&pairs)
    )
}

fn derive_enum(name: &str, body: TokenStream) -> String {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut arms = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("expected variant name in `{name}`, found {t}"),
        };
        i += 1;
        let arm = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                let binders: Vec<String> = (0..arity).map(|k| format!("__f{k}")).collect();
                let payload = if arity == 1 {
                    "::serde::Serialize::to_json(__f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_json({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{variant}({}) => {},",
                    binders.join(", "),
                    object_of(&[(variant.clone(), payload)])
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream());
                i += 1;
                let pairs: Vec<(String, String)> = fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_json({f})")))
                    .collect();
                format!(
                    "{name}::{variant} {{ {} }} => {},",
                    fields.join(", "),
                    object_of(&[(variant.clone(), object_of(&pairs))])
                )
            }
            _ => format!(
                "{name}::{variant} => ::serde::Value::String(::std::string::String::from(\"{variant}\")),"
            ),
        };
        arms.push(arm);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_json(&self) -> ::serde::Value {{\n\
         \t\tmatch self {{\n\
         \t\t\t{}\n\
         \t\t}}\n\
         \t}}\n\
         }}",
        arms.join("\n\t\t\t")
    )
}
