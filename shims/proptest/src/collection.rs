//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification: an exact length or a length range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_inclusive {
            return self.lo;
        }
        rng.next_in_range(self.lo as u64, self.hi_inclusive as u64 + 1) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }

    /// Halve-and-retry on the *length*: truncate to half (never below the
    /// size range's minimum). Element-wise shrinking is deliberately out
    /// of scope — small length is what makes counterexamples readable.
    fn shrink(&self, value: &Vec<S::Value>) -> Option<Vec<S::Value>> {
        let target = (value.len() / 2).max(self.size.lo);
        if target >= value.len() {
            None
        } else {
            Some(value[..target].to_vec())
        }
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates ordered sets whose elements come from `element`. If the
/// element domain is too small to reach the drawn size, the set is as
/// large as distinct draws allow (bounded attempts).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < 32 * (target + 1) {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::new(4);
        assert_eq!(vec(any::<u8>(), 12).new_value(&mut rng).len(), 12);
        for _ in 0..200 {
            let v = vec(any::<u8>(), 1..300).new_value(&mut rng);
            assert!((1..300).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrink_halves_length_down_to_minimum() {
        let s = vec(0u8..10, 3..=20);
        let v: Vec<u8> = (0..16).map(|i| i % 10).collect();
        let half = s.shrink(&v).unwrap();
        assert_eq!(half, &v[..8], "prefix truncation");
        let quarter = s.shrink(&half).unwrap();
        assert_eq!(quarter.len(), 4);
        let floor = s.shrink(&quarter).unwrap();
        assert_eq!(floor.len(), 3, "clamped at the size minimum");
        assert_eq!(s.shrink(&floor), None);
    }

    #[test]
    fn btree_set_respects_bounds_and_element_range() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = btree_set(0usize..28, 0..=4).new_value(&mut rng);
            assert!(s.len() <= 4);
            assert!(s.iter().all(|&x| x < 28));
        }
    }
}
