//! `any::<T>()` — the "whole domain" strategy for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.next_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_domain() {
        let mut rng = TestRng::new(3);
        let mut seen = [false; 256];
        for _ in 0..8000 {
            seen[any::<u8>().new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "u8 domain not covered");
    }
}
