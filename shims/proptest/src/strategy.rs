//! The [`Strategy`] trait and its range implementations.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the deterministic stream.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// One **halve-and-retry** shrink step: a candidate strictly simpler
    /// than `value` (closer to the strategy's minimum), or `None` when
    /// `value` is already minimal. The `proptest!` runner repeats the
    /// step while the failure reproduces and reverts the last passing
    /// candidate, so failures report small counterexamples. The default
    /// (no shrinking) matches strategies where "simpler" has no meaning.
    fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
        let _ = value;
        None
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Option<Self::Value> {
        (**self).shrink(value)
    }
}

// All integer bounds are widened to i128 so signed ranges order
// correctly and `lo..=MAX` spans need no overflow special-casing: the
// widest span (u64's full domain, 2^64) still fits in u128, and
// `next_u64 * span >> 64` keeps the draw in [0, span).
macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                draw_i128(rng, self.start as i128, self.end as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                shrink_i128(self.start as i128, *value as i128).map(|v| v as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                draw_i128(rng, *self.start() as i128, *self.end() as i128 + 1) as $t
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                shrink_i128(*self.start() as i128, *value as i128).map(|v| v as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).new_value(rng)
            }
            fn shrink(&self, value: &$t) -> Option<$t> {
                shrink_i128(self.start as i128, *value as i128).map(|v| v as $t)
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Halve the offset from the range's minimum (widened bounds): the
/// integer halve-and-retry step. `None` once the value sits at the
/// minimum.
fn shrink_i128(lo: i128, value: i128) -> Option<i128> {
    if value == lo {
        None
    } else {
        Some(lo + (value - lo) / 2)
    }
}

/// Uniform draw from `[lo, hi_excl)` over widened integer bounds.
fn draw_i128(rng: &mut TestRng, lo: i128, hi_excl: i128) -> i128 {
    let span = (hi_excl - lo) as u128;
    let offset = (u128::from(rng.next_u64()) * span) >> 64;
    lo + offset as i128
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // `start + r*span` can round up to `end`; keep the half-open
        // contract by stepping back just below it.
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..7).new_value(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0u8..=4).new_value(&mut rng);
            assert!(w <= 4);
            let x = (250u8..).new_value(&mut rng);
            assert!(x >= 250);
        }
    }

    #[test]
    fn range_from_respects_lower_bound_at_domain_top() {
        let mut rng = TestRng::new(9);
        for _ in 0..500 {
            let v = ((u64::MAX - 1)..).new_value(&mut rng);
            assert!(v >= u64::MAX - 1);
            let w = ((u64::MAX - 3)..=u64::MAX).new_value(&mut rng);
            assert!(w >= u64::MAX - 3);
        }
    }

    #[test]
    fn negative_signed_ranges() {
        let mut rng = TestRng::new(10);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..500 {
            let v = (-5i64..5).new_value(&mut rng);
            assert!((-5..5).contains(&v));
            seen_neg |= v < 0;
            seen_pos |= v >= 0;
            let w = (i8::MIN..=i8::MAX).new_value(&mut rng);
            let _ = w; // full domain: just must not panic
        }
        assert!(seen_neg && seen_pos, "signed range never crossed zero");
    }

    #[test]
    fn integer_shrink_halves_toward_minimum() {
        let s = 10u64..1000;
        assert_eq!(s.shrink(&810), Some(410)); // 10 + 800/2
        assert_eq!(s.shrink(&11), Some(10));
        assert_eq!(s.shrink(&10), None, "minimum is terminal");
        let si = -8i32..=8;
        assert_eq!(si.shrink(&8), Some(0)); // -8 + 16/2
        assert_eq!(si.shrink(&-8), None);
        let sf = 5usize..;
        assert_eq!(sf.shrink(&5), None);
        assert_eq!(sf.shrink(&105), Some(55));
        // Halving always terminates.
        let mut v = u64::MAX;
        let full = 0u64..u64::MAX;
        let mut steps = 0;
        while let Some(next) = full.shrink(&v) {
            assert!(next < v);
            v = next;
            steps += 1;
        }
        assert_eq!(v, 0);
        assert!(steps <= 64);
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let v = (0.25f64..0.5).new_value(&mut rng);
            assert!((0.25..0.5).contains(&v));
        }
    }
}
