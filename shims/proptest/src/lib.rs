//! Offline shim for the slice of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//! * value generation is a deterministic splitmix64 stream seeded from the
//!   test's module path and name, so every run explores the same cases and
//!   failures reproduce exactly;
//! * shrinking is **minimal halve-and-retry**: when a case fails, each
//!   parameter in turn is repeatedly halved toward its strategy's minimum
//!   (integer ranges halve the offset from the lower bound,
//!   `collection::vec` halves the length) for as long as the failure
//!   still reproduces, and the panic message reports the shrunk
//!   counterexample. There is no backtracking search beyond that;
//! * the default case count is 64 (configure per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual).
//!
//! Supported surface: the `proptest!` macro (strategy `name in expr` and
//! type `name: Ty` parameters, mixed freely, with an optional
//! `proptest_config` inner attribute), `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, `any::<T>()`, integer and float
//! range strategies, and `collection::{vec, btree_set}`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test block needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Outcome type threaded through a generated test body: `Ok` to continue,
/// `Err(Reject)` to skip the case, `Err(Fail)` to fail the test.
pub type TestCaseResult = Result<(), test_runner::TestCaseError>;

/// Implementation detail of [`proptest!`]: pins a case closure's argument
/// type to the parameter tuple's type (closure parameter inference cannot
/// resolve method calls on `&_` before the first call site).
#[doc(hidden)]
pub fn __typed_case<V, F: FnMut(&V) -> TestCaseResult>(_witness: &V, f: F) -> F {
    f
}

/// Defines property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!({$crate::test_runner::Config::default()} $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: one expansion per test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({$cfg:expr}) => {};
    ({$cfg:expr}
     $(#[$meta:meta])*
     fn $name:ident ($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __cfg.cases && __attempts < __cfg.cases * 16 {
                __attempts += 1;
                let __outcome: $crate::TestCaseResult =
                    $crate::__proptest_case!(__rng, [] ($($args)*) $body);
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of `{}` failed: {}",
                            __ran, stringify!($name), msg
                        );
                    }
                }
            }
            // Mirror real proptest's "too many global rejects" abort: a
            // prop_assume! that filters out (almost) every attempt must
            // not report green with no property actually checked.
            assert!(
                __ran >= __cfg.cases,
                "proptest `{}`: too many prop_assume! rejections ({} of {} cases ran in {} attempts)",
                stringify!($name),
                __ran,
                __cfg.cases,
                __attempts
            );
        }
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: folds the parameter list into
/// `(pattern, strategy)` pairs, then emits the case body (with the
/// halve-and-retry shrink loop around failures).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, [$(($pat:ident, $strat:expr))*] () $body:block) => {{
        $(let mut $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);)*
        // The body as a re-runnable closure over the parameter tuple, so
        // shrink candidates can be retried without redrawing.
        let __witness = ($(::std::clone::Clone::clone(&$pat),)*);
        #[allow(unused_variables)]
        let mut __case = $crate::__typed_case(&__witness, |__vals| {
            let ($($pat,)*) = ::std::clone::Clone::clone(__vals);
            #[allow(unreachable_code)]
            (|| { $body Ok(()) })()
        });
        #[allow(unused_mut)]
        let mut __outcome: $crate::TestCaseResult = __case(&__witness);
        if let Err($crate::test_runner::TestCaseError::Fail(_)) = &__outcome {
            let mut __steps: u32 = 0;
            loop {
                let mut __progress = false;
                $crate::__proptest_shrink_each!(
                    __case, __outcome, __progress, __steps,
                    [$(($pat, $strat))*] [$(($pat, $strat))*]
                );
                if !__progress || __steps >= 512 {
                    break;
                }
            }
            if let Err($crate::test_runner::TestCaseError::Fail(__msg)) = __outcome {
                #[allow(unused_mut)]
                let mut __cex = ::std::string::String::new();
                $(__cex.push_str(&format!("{} = {:?}, ", stringify!($pat), $pat));)*
                __outcome = Err($crate::test_runner::TestCaseError::Fail(format!(
                    "{__msg}\n  counterexample (after {__steps} shrink steps): {__cex}"
                )));
            }
        }
        __outcome
    }};
    ($rng:ident, [$($acc:tt)*] ($name:ident in $strat:expr) $body:block) => {
        $crate::__proptest_case!($rng, [$($acc)* ($name, $strat)] () $body)
    };
    ($rng:ident, [$($acc:tt)*] ($name:ident in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!($rng, [$($acc)* ($name, $strat)] ($($rest)*) $body)
    };
    ($rng:ident, [$($acc:tt)*] ($name:ident : $ty:ty) $body:block) => {
        $crate::__proptest_case!($rng, [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] () $body)
    };
    ($rng:ident, [$($acc:tt)*] ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(
            $rng, [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] ($($rest)*) $body
        )
    };
}

/// Implementation detail of [`__proptest_case!`]: one shrink loop per
/// parameter. Peels parameters off the first list one at a time; the
/// second (full) list rebuilds the argument tuple for every retry.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_shrink_each {
    ($case:ident, $outcome:ident, $progress:ident, $steps:ident,
     [] [$(($all:ident, $allstrat:expr))*]) => {};
    ($case:ident, $outcome:ident, $progress:ident, $steps:ident,
     [($pat:ident, $strat:expr) $($rest:tt)*] [$(($all:ident, $allstrat:expr))*]) => {
        while $steps < 512 {
            let Some(__cand) = $crate::strategy::Strategy::shrink(&($strat), &$pat) else {
                break;
            };
            let __prev = ::std::mem::replace(&mut $pat, __cand);
            $steps += 1;
            match $case(&($(::std::clone::Clone::clone(&$all),)*)) {
                Err($crate::test_runner::TestCaseError::Fail(__m)) => {
                    // Still failing on the simpler value: keep it.
                    $outcome = Err($crate::test_runner::TestCaseError::Fail(__m));
                    $progress = true;
                }
                _ => {
                    // Passed (or was rejected): revert and stop here.
                    $pat = __prev;
                    break;
                }
            }
        }
        $crate::__proptest_shrink_each!(
            $case, $outcome, $progress, $steps, [$($rest)*] [$(($all, $allstrat))*]
        );
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`, both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips (rejects) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    // Deliberately failing properties (no `#[test]` attribute — invoked
    // manually under `catch_unwind` to inspect the shrink report).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        fn fails_at_50_or_more(v in 0u64..100_000) {
            prop_assert!(v < 50);
        }

        fn fails_on_long_vectors(v in crate::collection::vec(0u8..4, 0..64)) {
            prop_assert!(v.len() < 5, "len {}", v.len());
        }
    }

    fn panic_message(f: fn()) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property should fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("string panic payload")
    }

    /// Halve-and-retry lands just above the failure threshold: the
    /// reported integer counterexample sits in [50, 100) (halving it
    /// once more would pass) instead of anywhere in [50, 100 000).
    #[test]
    fn integer_failures_shrink_to_small_counterexamples() {
        let msg = panic_message(fails_at_50_or_more);
        assert!(msg.contains("counterexample"), "{msg}");
        let v: u64 = msg
            .split("v = ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("counterexample value in message");
        assert!((50..100).contains(&v), "not shrunk: v = {v} in {msg}");
    }

    /// Vector failures shrink on length: the reported counterexample has
    /// 5..10 elements (half of it would pass).
    #[test]
    fn vec_failures_shrink_to_short_counterexamples() {
        let msg = panic_message(fails_on_long_vectors);
        assert!(msg.contains("counterexample"), "{msg}");
        let list = msg.split("v = [").nth(1).and_then(|s| s.split(']').next());
        let len = list.map(|s| s.split(',').count()).expect("vec in message");
        assert!((5..10).contains(&len), "not shrunk: len = {len} in {msg}");
    }
}
