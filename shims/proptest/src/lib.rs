//! Offline shim for the slice of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//! * value generation is a deterministic splitmix64 stream seeded from the
//!   test's module path and name, so every run explores the same cases and
//!   failures reproduce exactly;
//! * there is no shrinking — a failing case reports its index and message;
//! * the default case count is 64 (configure per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual).
//!
//! Supported surface: the `proptest!` macro (strategy `name in expr` and
//! type `name: Ty` parameters, mixed freely, with an optional
//! `proptest_config` inner attribute), `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, `any::<T>()`, integer and float
//! range strategies, and `collection::{vec, btree_set}`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test block needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Outcome type threaded through a generated test body: `Ok` to continue,
/// `Err(Reject)` to skip the case, `Err(Fail)` to fail the test.
pub type TestCaseResult = Result<(), test_runner::TestCaseError>;

/// Defines property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!({$crate::test_runner::Config::default()} $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: one expansion per test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({$cfg:expr}) => {};
    ({$cfg:expr}
     $(#[$meta:meta])*
     fn $name:ident ($($args:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __cfg.cases && __attempts < __cfg.cases * 16 {
                __attempts += 1;
                let __outcome: $crate::TestCaseResult =
                    $crate::__proptest_case!(__rng, [] ($($args)*) $body);
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of `{}` failed: {}",
                            __ran, stringify!($name), msg
                        );
                    }
                }
            }
            // Mirror real proptest's "too many global rejects" abort: a
            // prop_assume! that filters out (almost) every attempt must
            // not report green with no property actually checked.
            assert!(
                __ran >= __cfg.cases,
                "proptest `{}`: too many prop_assume! rejections ({} of {} cases ran in {} attempts)",
                stringify!($name),
                __ran,
                __cfg.cases,
                __attempts
            );
        }
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: folds the parameter list into
/// `(pattern, strategy)` pairs, then emits the case body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, [$(($pat:ident, $strat:expr))*] () $body:block) => {{
        $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);)*
        #[allow(unreachable_code)]
        let __case_outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
        __case_outcome
    }};
    ($rng:ident, [$($acc:tt)*] ($name:ident in $strat:expr) $body:block) => {
        $crate::__proptest_case!($rng, [$($acc)* ($name, $strat)] () $body)
    };
    ($rng:ident, [$($acc:tt)*] ($name:ident in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!($rng, [$($acc)* ($name, $strat)] ($($rest)*) $body)
    };
    ($rng:ident, [$($acc:tt)*] ($name:ident : $ty:ty) $body:block) => {
        $crate::__proptest_case!($rng, [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] () $body)
    };
    ($rng:ident, [$($acc:tt)*] ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(
            $rng, [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] ($($rest)*) $body
        )
    };
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`, both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips (rejects) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
