//! Case configuration, failure signalling, and the deterministic RNG.

/// Per-block configuration; only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a generated case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject,
    /// `prop_assert*!` failed — abort the test with this message.
    Fail(String),
}

/// Deterministic splitmix64 value stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary value.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds deterministically from a test's fully-qualified name, so each
    /// test explores its own fixed sequence run after run.
    pub fn for_test(qualified_name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in qualified_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `hi > lo` required.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        lo + (((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            let v = r.next_in_range(3, 9);
            assert!((3..9).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
